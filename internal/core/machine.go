package core

import "symbee/internal/dsp"

// MachineState is the stage a FrameMachine is in.
type MachineState uint8

// FrameMachine stages.
const (
	// StateHunting: scanning the phase stream for a preamble fold.
	StateHunting MachineState = iota
	// StateSelecting: fold lock acquired; waiting for enough lookahead
	// to refine the anchor by template matching.
	StateSelecting
	// StateDecoding: anchor pinned; waiting for the frame body to
	// arrive, then majority-vote decoding it.
	StateDecoding
)

func (s MachineState) String() string {
	switch s {
	case StateHunting:
		return "hunting"
	case StateSelecting:
		return "selecting"
	case StateDecoding:
		return "decoding"
	}
	return "unknown"
}

// StreamEventKind discriminates FrameMachine events.
type StreamEventKind uint8

// FrameMachine event kinds.
const (
	// EventLock: the fold statistic crossed the capture threshold — a
	// preamble-like pattern is in the stream.
	EventLock StreamEventKind = iota + 1
	// EventFrame: a frame decoded and passed its checksum.
	EventFrame
	// EventDecodeError: a locked preamble failed to produce a valid
	// frame (bad version, checksum mismatch, truncated stream).
	EventDecodeError
)

// StreamEvent is one occurrence in a decoded stream.
type StreamEvent struct {
	Kind StreamEventKind
	// Anchor is the absolute stream index of the preamble anchor
	// (for EventLock, the first fold candidate; for EventFrame, the
	// anchor the frame actually decoded at).
	Anchor int
	// Frame is the decoded frame (EventFrame only).
	Frame *Frame
	// Err is the decode failure (EventDecodeError only).
	Err error
	// End is one past the last phase index the frame occupies
	// (EventFrame only) — where hunting for the next frame resumes.
	End int
}

// FrameMachine is the per-stream decoder state machine: hunting →
// preamble-fold lock → synchronized majority-vote decode → frame emit,
// repeated for as long as the stream lasts. It consumes the phase
// stream in arbitrarily sized chunks, carrying all DSP state (fold
// sums, sign counts, windowed means) and a bounded phase history across
// chunk boundaries, so a capture split at any offset decodes
// bit-identically to a single batch pass — Decoder.DecodeFrame is
// literally "one big chunk" through this machine.
//
// Decisions are taken at deterministic stream positions, never at chunk
// boundaries: after a fold lock the machine waits until the retained
// history covers the span candidate selection may read
// (preambleScanner.selectionSpanEnd), and after anchor selection until
// it covers the largest possible frame at that anchor. Flush forces the
// pending decision with whatever has arrived, which is exactly the
// batch behavior at the end of a capture.
//
// A FrameMachine is not safe for concurrent use; internal/stream shards
// streams across workers so each machine stays single-goroutine.
type FrameMachine struct {
	d *Decoder

	// buf holds the retained phase history; buf[0] is stream index base.
	buf  []float64
	base int
	// n is the total number of phases pushed (the next stream index).
	n int

	scan *preambleScanner
	// scanPos is the next stream index to feed the scanner.
	scanPos int

	state MachineState
	// anchor is the selected preamble anchor (StateDecoding).
	anchor int
	// needUpTo is the coverage gate: the decision for the current state
	// fires once n ≥ needUpTo (or on Flush).
	needUpTo int

	// retention is how much history hunting keeps behind the newest
	// phase; 0 disables trimming (batch mode). Once a fold candidate
	// exists trimming stops, so selection always sees a stable window.
	retention int

	// scalarHunt forces the per-sample reference hunt path instead of the
	// batched kernel (huntbatch.go); the two are bit-identical and the
	// equivalence tests diff them over randomized streams.
	scalarHunt bool

	lockEmitted bool
	flushed     bool
	events      []StreamEvent
	// bitBuf is the frame bit-decode scratch (maxFrameBits once a frame
	// has been attempted); with the scanner reset-in-place and the
	// events buffer recycled by Events, it keeps the machine's sustained
	// push path free of per-sample and per-frame allocations.
	bitBuf []byte
}

// maxFrameBits is the largest on-air frame body in SymBee bits.
const maxFrameBits = HeaderBits + 8*MaxDataBytes + CRCBits

// defaultRetention returns the hunting history bound: enough for the
// template stage's backward reads — candidate anchors trail the scan
// position by foldSpan+StableLen, the walk-back probes up to 16 periods
// plus the in-template run offset (< one period) behind the earliest
// candidate, and alignment jitters ±16 samples — with a full preamble
// span of margin. ≈15.5k floats (124 KiB) per stream at 20 Msps.
func defaultRetention(p Params) int {
	return (PreambleBits+20)*p.BitPeriod + 2*p.StableLen
}

// NewFrameMachine returns a streaming machine with bounded history
// retention. The machine applies the decoder's Compensation to every
// pushed phase, mirroring the batch prepare step.
func (d *Decoder) NewFrameMachine() (*FrameMachine, error) {
	scan, err := d.newPreambleScanner(0)
	if err != nil {
		return nil, err
	}
	return &FrameMachine{
		d:         d,
		retention: defaultRetention(d.p),
		scan:      scan,
		// The frame bit-decode scratch is allocated here, at setup, so
		// the sustained push path never has to.
		bitBuf: make([]byte, maxFrameBits),
	}, nil
}

// NewBatchMachine returns a machine with unbounded history — the
// configuration under which it reproduces the historical whole-capture
// decode exactly, including template reads arbitrarily far back. The
// link package's batch stack preset is built on it.
func (d *Decoder) NewBatchMachine() (*FrameMachine, error) {
	m, err := d.NewFrameMachine()
	if err != nil {
		return nil, err
	}
	m.retention = 0
	return m, nil
}

// DecodeGateSpan returns, in phase values, the largest span a frame
// decode attempt anchored at stream index 0 may read: the +BitPeriod
// retry-shifted anchor plus a maximal frame body plus one stable
// window. It is the machine's StateDecoding coverage gate; harnesses
// use it to size the zero-phase pad that forces a pending decode.
func DecodeGateSpan(p Params) int {
	return (1+PreambleBits+maxFrameBits)*p.BitPeriod + p.StableLen
}

// State returns the machine's current stage.
func (m *FrameMachine) State() MachineState { return m.state }

// Buffered returns the number of retained history phases (the machine's
// current memory footprint in values).
func (m *FrameMachine) Buffered() int { return len(m.buf) }

// Pushed returns the total number of phases consumed.
func (m *FrameMachine) Pushed() int { return m.n }

// Events drains and returns the events produced since the last call.
// The returned slice is the machine's internal queue and is reused: it
// stays valid only until the next PushChunk or Flush. Callers that
// retain events across pushes must copy them (the element values, not
// the slice header — Frame pointers stay valid indefinitely).
func (m *FrameMachine) Events() []StreamEvent {
	ev := m.events
	m.events = m.events[:0]
	return ev
}

// PushChunk consumes a chunk of phase values (any length, including
// zero) and advances the machine. The chunk is copied; the caller may
// reuse the slice. Pushing into a flushed machine reports ErrFlushed
// (wrapped); Reset first.
//
//symbee:hotpath
func (m *FrameMachine) PushChunk(phases []float64) error {
	if m.flushed {
		return ErrFlushed
	}
	if comp := m.d.Compensation; comp != 0 {
		for _, v := range phases {
			m.buf = append(m.buf, dsp.WrapPhase(v+comp))
		}
	} else {
		m.buf = append(m.buf, phases...)
	}
	m.n += len(phases)
	m.advance()
	return nil
}

// Flush marks the end of the stream: any pending decision is forced
// with the data at hand (a truncated frame body decodes as far as it
// can and reports ErrTruncated, matching the batch path on a capture
// that ends mid-frame). After Flush the machine only accepts Reset.
func (m *FrameMachine) Flush() {
	m.flushed = true
	m.advance()
}

// Reset returns the machine to a fresh hunting state at stream index 0.
func (m *FrameMachine) Reset() {
	m.buf = m.buf[:0]
	m.base, m.n, m.scanPos = 0, 0, 0
	m.scan.reset(0)
	m.state = StateHunting
	m.lockEmitted = false
	m.flushed = false
	m.events = m.events[:0]
}

// advance runs the state machine as far as the buffered stream allows.
func (m *FrameMachine) advance() {
	for {
		switch m.state {
		case StateHunting:
			if !m.feedScanner() {
				// On a flush the batch path runs selection with
				// whatever candidates the exhausted stream produced,
				// even if the refinement span never completed.
				if m.flushed && m.scan.locked() {
					m.state = StateSelecting
					m.needUpTo = m.n
					continue
				}
				m.trim()
				return // need more data
			}
			m.state = StateSelecting
			m.needUpTo = m.scan.selectionSpanEnd()
		case StateSelecting:
			if m.n < m.needUpTo && !m.flushed {
				return
			}
			anchor, err := m.scan.finish(m.window())
			if err != nil {
				// No candidates survived: nothing to decode, resume
				// hunting over whatever follows.
				m.rearm(m.scanPos)
				continue
			}
			m.anchor = anchor
			m.state = StateDecoding
			// Largest span any decode attempt may read: the +BitPeriod
			// retry shifted anchor plus a maximal frame body.
			m.needUpTo = anchor + DecodeGateSpan(m.d.p)
		case StateDecoding:
			if m.n < m.needUpTo && !m.flushed {
				return
			}
			frame, usedAnchor, err := m.d.decodeFrameWinWithRetry(m.window(), m.anchor, m.bitBuf)
			if err != nil {
				m.events = append(m.events, StreamEvent{Kind: EventDecodeError, Anchor: m.anchor, Err: err})
				m.rearm(m.scanPos)
			} else {
				total := HeaderBits + len(frame.Data)*8 + CRCBits
				end := usedAnchor + (PreambleBits+total-1)*m.d.p.BitPeriod + m.d.p.StableLen
				m.events = append(m.events, StreamEvent{Kind: EventFrame, Anchor: usedAnchor, Frame: frame, End: end})
				m.rearm(end)
			}
		}
	}
}

// SetScalarHunt selects between the batched hunt kernel (default) and
// the per-sample reference path. The two are bit-identical; the switch
// exists so the equivalence tests can diff them and so a regression can
// be bisected in the field.
func (m *FrameMachine) SetScalarHunt(v bool) { m.scalarHunt = v }

// feedScanner streams buffered phases into the preamble scanner via the
// batched hunt kernel, reporting whether the scan completed. It also
// emits the lock event on the first threshold crossing. The scan
// position may lag the newest phase by up to a hunt segment while the
// kernel defers a provably idle frontier tail; trim never cuts past it.
func (m *FrameMachine) feedScanner() bool {
	done := m.scan.huntChunk(m.window(), m.n, m.scalarHunt, m.flushed)
	m.scanPos = m.scan.i
	if !m.lockEmitted && m.scan.locked() {
		m.lockEmitted = true
		m.events = append(m.events, StreamEvent{Kind: EventLock, Anchor: m.scan.lockAnchor})
	}
	return done
}

// rearm restarts hunting at stream index from: the scanner is reset
// cold (fold warm-up included, rings reused in place) and
// already-buffered phases past from will be rescanned by the caller's
// advance loop. Frame bodies are skipped wholesale (from = frame end),
// so their codeword runs cannot re-trigger the fold detector.
func (m *FrameMachine) rearm(from int) {
	if from < m.scanPos {
		from = m.scanPos
	}
	if from > m.n {
		from = m.n
	}
	m.scanPos = from
	m.scan.reset(from)
	m.state = StateHunting
	m.lockEmitted = false
	m.trim()
}

// window returns the retained history as a phaseWindow.
func (m *FrameMachine) window() phaseWindow {
	return phaseWindow{data: m.buf, base: m.base}
}

// trim drops history that hunting can no longer reach. Only safe while
// no fold candidate exists: from the first candidate until the frame is
// resolved the whole window stays pinned for the template stage.
func (m *FrameMachine) trim() {
	if m.retention == 0 || m.state != StateHunting || m.scan.locked() {
		return
	}
	cut := len(m.buf) - m.retention
	// Never cut past the scan position: everything from scanPos on is
	// still unscanned (e.g. the lookahead buffered while a previous
	// frame was being decoded) and will be fed to the scanner next.
	if maxCut := m.scanPos - m.base; cut > maxCut {
		cut = maxCut
	}
	if cut > 0 {
		m.buf = append(m.buf[:0], m.buf[cut:]...)
		m.base += cut
	}
}
