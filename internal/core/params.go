package core

import (
	"fmt"
	"math"
)

// SymBee codeword bytes (§IV-A). One payload byte carries one SymBee bit.
const (
	// Bit0Byte is the payload byte for SymBee bit 0: ZigBee symbols (6,7).
	Bit0Byte = 0x67
	// Bit1Byte is the payload byte for SymBee bit 1: ZigBee symbols (E,F).
	Bit1Byte = 0xEF
	// PreambleBits is the number of bit-0 codewords prepended as the
	// SymBee preamble (§V).
	PreambleBits = 4
)

// baseRate is the reference WiFi sampling rate for which the paper
// quotes its sample counts (16-sample lag, 84-value stable run, 640
// samples per bit).
const baseRate = 20e6

// Params holds every sample-count constant of the scheme at a given
// receiver rate. Use Params20 or Params40 for the standard 20/40 MHz
// WiFi configurations, or NewParams for any rate that is an integral
// multiple of 20 Msps.
type Params struct {
	// SampleRate of the WiFi receiver in Hz.
	SampleRate float64
	// Lag is the autocorrelation lag in samples (0.8 µs): 16 at 20 Msps.
	Lag int
	// StableLen is the number of stable phase values per SymBee bit:
	// 84 at 20 Msps, 168 at 40 Msps.
	StableLen int
	// BitPeriod is the spacing of SymBee bits in phase samples: one
	// byte = two ZigBee symbols = 32 µs = 640 samples at 20 Msps.
	BitPeriod int
	// Tau is the error tolerance of unsynchronized detection: a window
	// of StableLen values detects a bit when at least StableLen−Tau
	// share a sign. The paper uses 10 at 20 Msps (§IV-C) and notes the
	// tolerance doubles at 40 MHz (§VI-B).
	Tau int
	// TauSync is the majority-vote threshold of synchronized decoding:
	// StableLen/2 (§V).
	TauSync int
}

// Params20 returns the 20 Msps (802.11g/n 20 MHz) parameter set.
func Params20() Params { p, _ := NewParams(20e6); return p }

// Params40 returns the 40 Msps (802.11n 40 MHz) parameter set.
func Params40() Params { p, _ := NewParams(40e6); return p }

// NewParams derives the parameter set for an arbitrary sample rate that
// is a positive integer multiple of 20 Msps.
func NewParams(sampleRate float64) (Params, error) {
	factorF := sampleRate / baseRate
	factor := int(math.Round(factorF))
	if factor < 1 || math.Abs(factorF-float64(factor)) > 1e-9 {
		return Params{}, fmt.Errorf("core: sample rate %v is not a multiple of 20 Msps", sampleRate)
	}
	return Params{
		SampleRate: sampleRate,
		Lag:        16 * factor,
		StableLen:  84 * factor,
		BitPeriod:  640 * factor,
		Tau:        10 * factor,
		TauSync:    84 * factor / 2,
	}, nil
}

// WithTau returns a copy of p with the unsynchronized tolerance replaced
// (used by the Fig. 22a τ sweep).
func (p Params) WithTau(tau int) Params {
	p.Tau = tau
	return p
}

// BitDuration returns the airtime of one SymBee bit in seconds (32 µs).
func (p Params) BitDuration() float64 {
	return float64(p.BitPeriod) / p.SampleRate
}

// RawBitRate returns the instantaneous SymBee data rate during a
// payload: 1 bit per two ZigBee symbols = 31.25 kbps (§VII).
func (p Params) RawBitRate() float64 {
	return 1 / p.BitDuration()
}

// Validate reports whether the parameter set is internally consistent.
func (p Params) Validate() error {
	switch {
	case p.SampleRate <= 0:
		return fmt.Errorf("core: non-positive sample rate %v", p.SampleRate)
	case p.Lag <= 0 || p.StableLen <= 0 || p.BitPeriod <= 0:
		return fmt.Errorf("core: non-positive sample counts %+v", p)
	case p.Tau < 0 || p.Tau >= p.StableLen:
		return fmt.Errorf("core: tau %d out of [0,%d)", p.Tau, p.StableLen)
	case p.TauSync <= 0 || p.TauSync > p.StableLen:
		return fmt.Errorf("core: tauSync %d out of (0,%d]", p.TauSync, p.StableLen)
	case p.StableLen >= p.BitPeriod:
		return fmt.Errorf("core: stable run %d not shorter than bit period %d", p.StableLen, p.BitPeriod)
	}
	return nil
}
