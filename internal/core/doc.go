// Package core implements SymBee itself — the paper's contribution: a
// symbol-level ZigBee→WiFi cross-technology communication scheme based
// on payload encoding.
//
// # Encoding (at the ZigBee sender, §IV-A)
//
// A SymBee bit is one byte in the payload of a legitimate ZigBee packet:
// byte 0x67 (symbols 6,7) carries bit 0 and byte 0xEF (symbols E,F)
// carries bit 1. These two symbol pairs are the unique combinations
// whose I/Q waveforms stay continuously sinusoidal for 5 µs across the
// symbol junction, so they cross-observe at the WiFi idle listening as
// the longest possible stable-phase runs (84 values at 20 Msps) at the
// two extreme phases ±4π/5.
//
// # Sign convention
//
// With the standard chip polarity implemented in package zigbee, (6,7)
// cross-observes at +4π/5 and (E,F) at −4π/5. The paper's prose is
// internally inconsistent about which sign carries which bit (see
// DESIGN.md); this package fixes bit 0 = (6,7) = nonnegative stable
// phase, bit 1 = (E,F) = negative, matching §IV-A's byte assignment and
// §IV-B's phase derivation.
//
// # Decoding (at the WiFi receiver, §IV-C, §V)
//
// The decoder consumes the phase stream ∠p[n] that the WiFi
// idle-listening block computes anyway. Unsynchronized decoding slides
// an 84-value window and emits a bit whenever at least 84−τ values share
// a sign. Synchronized decoding first captures the SymBee preamble
// (four bit-0 bytes) by folding the phase stream with period 640 and
// depth 4, then majority-votes exactly the 84 stable values of each bit
// position (threshold τ_sync = 42). A constant +4π/5 compensation
// removes the ZigBee/WiFi channel frequency offset (Appendix B).
//
// All sample counts scale with the receiver rate: at 40 Msps the lag is
// 32, the stable run 168 values, and the bit period 1280 (§VI-B).
package core
