package core

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"symbee/internal/channel"
	"symbee/internal/dsp"
	"symbee/internal/wifi"
)

func mustLink(t testing.TB, p Params, comp float64) *Link {
	t.Helper()
	l, err := NewLink(p, comp)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func randomBits(n int, rng *rand.Rand) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	return bits
}

func TestNoiselessRawRoundTrip(t *testing.T) {
	for _, p := range []Params{Params20(), Params40()} {
		l := mustLink(t, p, 0)
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 5; trial++ {
			bits := randomBits(40, rng)
			sig, err := l.TransmitBits(bits)
			if err != nil {
				t.Fatal(err)
			}
			got, err := l.ReceiveBits(sig, len(bits))
			if err != nil {
				t.Fatalf("rate %v trial %d: %v", p.SampleRate, trial, err)
			}
			if !bytes.Equal(got, bits) {
				t.Fatalf("rate %v trial %d: decode mismatch\n got %v\nwant %v",
					p.SampleRate, trial, got, bits)
			}
		}
	}
}

func TestNoiselessFrameRoundTrip(t *testing.T) {
	l := mustLink(t, Params20(), 0)
	f := &Frame{Seq: 42, Flags: 0x3, Data: []byte("hello, wifi")[:10]}
	sig, err := l.TransmitFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := l.ReceiveFrame(sig)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != f.Seq || got.Flags != f.Flags || !bytes.Equal(got.Data, f.Data) {
		t.Errorf("frame = %+v, want %+v", got, f)
	}
}

func TestUnsyncDecodeNoiseless(t *testing.T) {
	l := mustLink(t, Params20(), 0)
	bits := []byte{0, 1, 0, 1, 1, 0}
	sig, err := l.TransmitBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	// Scan from the payload onward: the sign-only unsynchronized
	// detector (faithful to §IV-C) also fires on the low-magnitude
	// periodic pattern of the ZigBee synchronization header, which is
	// one of the reasons the paper adds the preamble (§V).
	headerSamples := 12 * 320 // 6 PPDU header bytes
	detected := l.Decoder().DecodeUnsync(l.Phases(sig)[headerSamples:])
	// Expect preamble (4 zeros) + the data bits, evenly spaced.
	want := append([]byte{0, 0, 0, 0}, bits...)
	if len(detected) != len(want) {
		t.Fatalf("detected %d bits, want %d: %+v", len(detected), len(want), detected)
	}
	for i, d := range detected {
		if d.Bit != want[i] {
			t.Errorf("bit %d = %d, want %d", i, d.Bit, want[i])
		}
		if i > 0 {
			gap := d.Pos - detected[i-1].Pos
			if gap < 600 || gap > 680 {
				t.Errorf("bit %d gap = %d samples, want ≈640", i, gap)
			}
		}
	}
}

func TestCFOCompensatedDecode(t *testing.T) {
	// A real channel always has a carrier offset; the canonical +4π/5
	// compensation must recover the bits for every overlapping pair.
	p := Params20()
	rng := rand.New(rand.NewSource(2))
	bits := randomBits(30, rng)
	for _, pair := range []struct{ wc, zk int }{{1, 11}, {1, 12}, {1, 13}, {6, 17}, {13, 24}} {
		off, err := wifi.FreqOffset(pair.wc, pair.zk)
		if err != nil {
			t.Fatal(err)
		}
		l := mustLink(t, p, wifi.CanonicalCompensation)
		sig, err := l.TransmitBits(bits)
		if err != nil {
			t.Fatal(err)
		}
		m, err := channel.NewMedium(channel.Config{
			SampleRate: p.SampleRate,
			SNRdB:      30,
			FreqOffset: off,
			Pad:        300,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := l.ReceiveBits(m.Transmit(sig), len(bits))
		if err != nil {
			t.Fatalf("pair %+v: %v", pair, err)
		}
		if !bytes.Equal(got, bits) {
			t.Errorf("pair %+v: decode mismatch", pair)
		}
	}
}

func TestUncompensatedCFOBreaksDecoding(t *testing.T) {
	// Negative control: without Appendix B's compensation the stable
	// phases land at 0 and +2π/5, so sign decoding must fail.
	p := Params20()
	rng := rand.New(rand.NewSource(3))
	bits := randomBits(30, rng)
	l := mustLink(t, p, 0) // no compensation
	sig, err := l.TransmitBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	m, err := channel.NewMedium(channel.Config{
		SampleRate: p.SampleRate,
		SNRdB:      30,
		FreqOffset: 3e6,
		Pad:        300,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := l.ReceiveBits(m.Transmit(sig), len(bits))
	if err == nil && bytes.Equal(got, bits) {
		t.Error("decoding should not survive an uncompensated 3 MHz offset")
	}
}

func TestDecodeUnderNoise(t *testing.T) {
	// At 0 dB (≈ the paper's −5 dB testbed point, see EXPERIMENTS.md)
	// raw-bit decoding lands in the paper's Fig. 22b regime: mostly
	// correct, with residual errors dominated by occasional anchor
	// ambiguity. The paper reports 7.6% there; accept < 15%.
	p := Params20()
	rng := rand.New(rand.NewSource(4))
	l := mustLink(t, p, wifi.CanonicalCompensation)
	bits := randomBits(50, rng)
	sig, err := l.TransmitBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	errorsTotal, captured, trials := 0, 0, 15
	for i := 0; i < trials; i++ {
		m, err := channel.NewMedium(channel.Config{
			SampleRate: p.SampleRate,
			SNRdB:      0,
			FreqOffset: channel.DefaultFreqOffset,
			Pad:        500,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := l.ReceiveBits(m.Transmit(sig), len(bits))
		if err != nil {
			continue // packet loss, accounted separately
		}
		captured++
		for k := range bits {
			if got[k] != bits[k] {
				errorsTotal++
			}
		}
	}
	if captured < trials*2/3 {
		t.Fatalf("only %d/%d packets captured at 0 dB", captured, trials)
	}
	ber := float64(errorsTotal) / float64(captured*len(bits))
	if ber > 0.15 {
		t.Errorf("BER at 0 dB = %v, want < 15%%", ber)
	}
}

func TestDecodeCleanAtHighSNR(t *testing.T) {
	// At +5 dB every packet must decode perfectly.
	p := Params20()
	rng := rand.New(rand.NewSource(14))
	l := mustLink(t, p, wifi.CanonicalCompensation)
	bits := randomBits(50, rng)
	sig, err := l.TransmitBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m, err := channel.NewMedium(channel.Config{
			SampleRate: p.SampleRate,
			SNRdB:      5,
			FreqOffset: channel.DefaultFreqOffset,
			Pad:        500,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := l.ReceiveBits(m.Transmit(sig), len(bits))
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if !bytes.Equal(got, bits) {
			t.Fatalf("trial %d: bit errors at +5 dB", i)
		}
	}
}

func TestPreambleCaptureInDeepNoise(t *testing.T) {
	// Fig. 11 / §V: folding captures the preamble where plain decoding
	// has already collapsed. The paper demonstrates this at its testbed
	// SNR of −10 dB; our full-band per-sample SNR axis sits ≈5 dB lower
	// (see EXPERIMENTS.md calibration), so the equivalent point here is
	// ≈−2 dB — where unsynchronized decoding is indeed useless (checked
	// below) but folding still locks on.
	p := Params20()
	rng := rand.New(rand.NewSource(5))
	l := mustLink(t, p, wifi.CanonicalCompensation)
	bits := randomBits(20, rng)
	sig, err := l.TransmitBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	captured, unsyncUsable := 0, 0
	const trials = 25
	for i := 0; i < trials; i++ {
		m, err := channel.NewMedium(channel.Config{
			SampleRate: p.SampleRate,
			SNRdB:      -2,
			FreqOffset: channel.DefaultFreqOffset,
			Pad:        500,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		phases := l.Phases(m.Transmit(sig))
		if _, err := l.Decoder().CapturePreamble(phases); err == nil {
			captured++
		}
		// Plain sliding-window detection finds nearly nothing here.
		if det := l.Decoder().DecodeUnsync(phases); len(det) >= len(bits) {
			unsyncUsable++
		}
	}
	if captured < trials-3 {
		t.Errorf("preamble captured %d/%d times at -2 dB", captured, trials)
	}
	if unsyncUsable > trials/2 {
		t.Errorf("unsync decoding usable in %d/%d trials; expected folding to be the differentiator", unsyncUsable, trials)
	}
}

func TestCapturePreambleRejectsNoise(t *testing.T) {
	p := Params20()
	dec, err := NewDecoder(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	falseAlarms := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		noise := make([]float64, 30000)
		for j := range noise {
			noise[j] = (rng.Float64()*2 - 1) * math.Pi
		}
		if _, err := dec.capturePreamble(noise); err == nil {
			falseAlarms++
		}
	}
	if falseAlarms > 1 {
		t.Errorf("%d/%d false preamble captures on uniform noise", falseAlarms, trials)
	}
}

func TestSyncBitMargins(t *testing.T) {
	l := mustLink(t, Params20(), 0)
	bits := []byte{0, 1, 0, 1}
	sig, err := l.TransmitBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	phases := l.Phases(sig)
	anchor, err := l.Decoder().CapturePreamble(phases)
	if err != nil {
		t.Fatal(err)
	}
	margins, err := l.Decoder().SyncBitMargins(phases, anchor, len(bits))
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range margins {
		if bits[i] == 0 && m < 74 {
			t.Errorf("bit %d (0): margin %d, want ≥74", i, m)
		}
		if bits[i] == 1 && m > 10 {
			t.Errorf("bit %d (1): margin %d, want ≤10", i, m)
		}
	}
}

func TestDecodeBitsTruncatedStream(t *testing.T) {
	l := mustLink(t, Params20(), 0)
	sig, err := l.TransmitBits([]byte{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	phases := l.Phases(sig)
	if _, err := l.Decoder().DecodeBits(phases, 50); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestDecoderDoesNotMutateInput(t *testing.T) {
	p := Params20()
	dec, err := NewDecoder(p, wifi.CanonicalCompensation)
	if err != nil {
		t.Fatal(err)
	}
	phases := []float64{0.1, -0.2, 0.3}
	orig := append([]float64{}, phases...)
	dec.DecodeUnsync(phases)
	dec.capturePreamble(phases)
	for i := range phases {
		if phases[i] != orig[i] {
			t.Fatal("decoder mutated caller's phase stream")
		}
	}
}

func TestPhaseAlphabet17Values(t *testing.T) {
	// Appendix A: a noiseless cross-observed ZigBee signal only produces
	// ∠p[n] = i·π/10. Verify over a random full packet.
	l := mustLink(t, Params20(), 0)
	rng := rand.New(rand.NewSource(7))
	payload := make([]byte, 60)
	rng.Read(payload)
	sig, err := l.PayloadToSignal(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Skip the packet edges: in the first/last half chip slot only one
	// OQPSK rail is active, which produces π/20-grid values. Appendix A
	// applies to the steady state where both rails run.
	phases := l.Phases(sig)
	phases = phases[16 : len(phases)-32]
	seen := map[int]bool{}
	for i, phi := range phases {
		snapped, mult := dsp.QuantizePhase(phi, math.Pi/10)
		if math.Abs(phi-snapped) > 1e-6 {
			t.Fatalf("phase[%d] = %v is not a multiple of π/10", i, phi)
		}
		seen[mult] = true
	}
	// The alphabet is ±i·π/10 for i in [0,8]; ±9π/10 and π never occur
	// in-signal, but the stream boundaries (zero-amplitude half-slots at
	// packet edges) can contribute π. Allow those edge artifacts while
	// requiring the core alphabet.
	for mult := range seen {
		if mult < -8 || mult > 8 {
			// Must come only from the silent packet edges.
			if mult != 10 && mult != -9 && mult != 9 {
				t.Errorf("unexpected phase multiple %d·π/10", mult)
			}
		}
	}
	if !seen[8] || !seen[-8] {
		t.Error("stable phases ±8π/10 missing from alphabet")
	}
}

func TestDecodeFrame40MHz(t *testing.T) {
	l := mustLink(t, Params40(), wifi.CanonicalCompensation)
	rng := rand.New(rand.NewSource(8))
	f := &Frame{Seq: 7, Flags: 1, Data: []byte{0xCA, 0xFE}}
	sig, err := l.TransmitFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	m, err := channel.NewMedium(channel.Config{
		SampleRate: 40e6,
		SNRdB:      0,
		FreqOffset: channel.DefaultFreqOffset,
		Pad:        500,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := l.ReceiveFrame(m.Transmit(sig))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != f.Seq || !bytes.Equal(got.Data, f.Data) {
		t.Errorf("frame = %+v", got)
	}
}
