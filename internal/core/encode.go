package core

import (
	"fmt"

	"symbee/internal/coding"
	"symbee/internal/zigbee"
)

// Frame layout constants. A SymBee frame occupies the payload of one
// ZigBee packet, one payload byte per SymBee bit:
//
//	preamble (4 bits) | ctrl (16 bits) | seq (8 bits) | data | CRC-16
//
// ctrl packs a 4-bit version, 4 flag bits and the data length in bytes,
// mirroring the paper's "2 bytes control information, 1 byte data
// sequence and 2 bytes check sum" (§VIII).
const (
	// Version is the 4-bit SymBee frame version encoded in ctrl.
	Version = 0x5
	// HeaderBits counts ctrl+seq bits.
	HeaderBits = 16 + 8
	// CRCBits counts the trailing checksum bits.
	CRCBits = 16
	// MaxPayloadBits is the number of SymBee bits that fit in one
	// maximal ZigBee packet: 127-byte PSDU minus the 2-byte FCS.
	MaxPayloadBits = zigbee.MaxPSDULen - zigbee.FCSLen
	// MaxDataBytes is the largest Frame.Data that fits:
	// (125 − 4 − 24 − 16)/8 = 10 bytes.
	MaxDataBytes = (MaxPayloadBits - PreambleBits - HeaderBits - CRCBits) / 8
	// MaxDataBytesMAC is the largest Frame.Data when the packet carries
	// full IEEE 802.15.4 MAC framing (9-byte header): 9 bytes.
	MaxDataBytesMAC = (zigbee.MaxMSDULen - PreambleBits - HeaderBits - CRCBits) / 8
)

// Encoding errors (ErrDataTooLong, ErrBadBit) are defined in errors.go.

// Frame is one SymBee message.
type Frame struct {
	// Seq is the sender's sequence number.
	Seq byte
	// Flags carries 4 user-defined bits (e.g. channel-coordination
	// message types).
	Flags byte
	// Data is the message body, at most MaxDataBytes bytes.
	Data []byte
}

// BitToByte converts one SymBee bit to its payload codeword byte.
func BitToByte(bit byte) (byte, error) {
	switch bit {
	case 0:
		return Bit0Byte, nil
	case 1:
		return Bit1Byte, nil
	}
	return 0, fmt.Errorf("%w: %d", ErrBadBit, bit)
}

// ByteToBit converts a received payload byte back to a SymBee bit; ok is
// false for bytes that are not SymBee codewords. This is the entire
// ZigBee-side receiver of a cross-technology broadcast (§VI-A).
func ByteToBit(b byte) (bit byte, ok bool) {
	switch b {
	case Bit0Byte:
		return 0, true
	case Bit1Byte:
		return 1, true
	}
	return 0, false
}

// EncodeBits maps a raw bit string (one bit per byte, values 0/1) to
// ZigBee payload bytes with the SymBee preamble prepended. This is the
// "raw mode" the paper's throughput experiments use (repeated '01'
// patterns without framing).
func EncodeBits(bits []byte) ([]byte, error) {
	if PreambleBits+len(bits) > MaxPayloadBits {
		return nil, fmt.Errorf("%w: %d bits > %d", ErrDataTooLong, len(bits), MaxPayloadBits-PreambleBits)
	}
	payload := make([]byte, 0, PreambleBits+len(bits))
	for i := 0; i < PreambleBits; i++ {
		payload = append(payload, Bit0Byte)
	}
	for _, bit := range bits {
		b, err := BitToByte(bit)
		if err != nil {
			return nil, err
		}
		payload = append(payload, b)
	}
	return payload, nil
}

// FrameBits serializes a frame to its bit string (without preamble).
func (f *Frame) FrameBits() ([]byte, error) {
	if len(f.Data) > MaxDataBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrDataTooLong, len(f.Data))
	}
	ctrl0 := Version<<4 | f.Flags&0x0F
	ctrl1 := byte(len(f.Data))
	protected := make([]byte, 0, 3+len(f.Data))
	protected = append(protected, ctrl0, ctrl1, f.Seq)
	protected = append(protected, f.Data...)
	crc := zigbee.CRC16(protected)
	buf := append(protected, byte(crc>>8), byte(crc&0xFF))
	return coding.BytesToBits(buf), nil
}

// EncodeFrame serializes a frame to ZigBee payload bytes, preamble
// included: the byte slice to place in a ZigBee packet payload.
func EncodeFrame(f *Frame) ([]byte, error) {
	bits, err := f.FrameBits()
	if err != nil {
		return nil, err
	}
	return EncodeBits(bits)
}

// ParseFrameBits reconstructs a Frame from decoded bits (preamble
// excluded). It is the inverse of FrameBits and is shared by the WiFi
// phase decoder, the ZigBee broadcast receiver and the reliability
// layer's Hamming-coded frame path (internal/reliable).
func ParseFrameBits(bits []byte) (*Frame, error) {
	if len(bits) < HeaderBits+CRCBits {
		return nil, fmt.Errorf("%w: %d bits", ErrTruncated, len(bits))
	}
	header, err := coding.BitsToBytes(bits[:HeaderBits])
	if err != nil {
		return nil, err
	}
	if header[0]>>4 != Version {
		return nil, fmt.Errorf("%w: 0x%X", ErrBadVersion, header[0]>>4)
	}
	dataLen := int(header[1])
	total := HeaderBits + dataLen*8 + CRCBits
	if dataLen > MaxDataBytes || len(bits) < total {
		return nil, fmt.Errorf("%w: need %d bits, have %d", ErrTruncated, total, len(bits))
	}
	body, err := coding.BitsToBytes(bits[:total])
	if err != nil {
		return nil, err
	}
	protected := body[:3+dataLen]
	gotCRC := uint16(body[3+dataLen])<<8 | uint16(body[3+dataLen+1])
	if zigbee.CRC16(protected) != gotCRC {
		return nil, ErrChecksum
	}
	return &Frame{
		Seq:   header[2],
		Flags: header[0] & 0x0F,
		Data:  append([]byte{}, protected[3:]...),
	}, nil
}

// DecodeBroadcastPayload is the ZigBee-side receiver of a
// cross-technology broadcast: given the payload bytes of a received
// ZigBee packet, it locates the SymBee preamble (four 0x67 bytes),
// converts the following codeword bytes to bits and parses the frame.
// It runs entirely at the application layer, as §VI-A prescribes.
func DecodeBroadcastPayload(payload []byte) (*Frame, error) {
	start := -1
	for i := 0; i+PreambleBits <= len(payload); i++ {
		match := true
		for j := 0; j < PreambleBits; j++ {
			if payload[i+j] != Bit0Byte {
				match = false
				break
			}
		}
		if match {
			start = i + PreambleBits
			break
		}
	}
	if start < 0 {
		return nil, ErrNoPreamble
	}
	bits := make([]byte, 0, len(payload)-start)
	for _, b := range payload[start:] {
		bit, ok := ByteToBit(b)
		if !ok {
			break // first non-codeword byte ends the SymBee message
		}
		bits = append(bits, bit)
	}
	return ParseFrameBits(bits)
}
