package core

import (
	"errors"
	"fmt"
)

// Canonical error sentinels of the decode/encode pipeline. Every error
// the package returns wraps exactly one of these (or one of the
// messenger sentinels in messenger.go), so callers discriminate with
// errors.Is instead of string matching. The original, more specific
// names (ErrChecksum, ErrDataTooLong, ErrTruncated) remain exported and
// still satisfy errors.Is against both themselves and the canonical
// sentinel they wrap.
var (
	// ErrNoPreamble: no SymBee preamble was found in the stream.
	ErrNoPreamble = errors.New("core: no SymBee preamble captured")
	// ErrCRC: a frame arrived but its CRC-16 did not validate.
	ErrCRC = errors.New("core: frame checksum mismatch")
	// ErrBadLength: a length is out of range — data too long to encode,
	// a stream too short to decode, or a header claiming an impossible
	// size.
	ErrBadLength = errors.New("core: bad length")
	// ErrBadVersion: the frame version nibble is not Version.
	ErrBadVersion = errors.New("core: frame version mismatch")
	// ErrBadBit: a bit value other than 0 or 1 was supplied.
	ErrBadBit = errors.New("core: bit value must be 0 or 1")
	// ErrFlushed: data was pushed into a FrameMachine that has already
	// been flushed; Reset it before reuse.
	ErrFlushed = errors.New("core: stream already flushed")
)

// Specific sentinels retained from the original per-file taxonomy. Each
// wraps its canonical counterpart: errors.Is(err, ErrDataTooLong) and
// errors.Is(err, ErrBadLength) are both true for an oversized frame.
var (
	// ErrChecksum is the historical name of ErrCRC.
	ErrChecksum = ErrCRC
	// ErrDataTooLong is returned when frame data exceeds MaxDataBytes.
	ErrDataTooLong = fmt.Errorf("%w: frame data exceeds capacity", ErrBadLength)
	// ErrTruncated is returned when the phase stream (or bit string)
	// ends before the frame does.
	ErrTruncated = fmt.Errorf("%w: stream ends before frame does", ErrBadLength)
)
