package core

import (
	"bytes"
	"math/rand"
	"testing"

	"symbee/internal/channel"
	"symbee/internal/wifi"
	"symbee/internal/zigbee"
)

func TestMACFramedFrameDecodesAtWiFi(t *testing.T) {
	// With a full MAC header between the PHY header and the SymBee
	// preamble, the WiFi decoder must still anchor correctly.
	l := mustLink(t, Params20(), 0)
	if MaxDataBytesMAC != 9 {
		t.Fatalf("MaxDataBytesMAC = %d, want 9", MaxDataBytesMAC)
	}
	f := &Frame{Seq: 11, Flags: 0x1, Data: []byte("mac-frame")} // 9 bytes
	sig, err := l.TransmitFrameMAC(f, 0xBEEF, 42)
	if err != nil {
		t.Fatal(err)
	}
	got, err := l.ReceiveFrame(sig)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != f.Seq || !bytes.Equal(got.Data, f.Data) {
		t.Errorf("frame = %+v", got)
	}
}

func TestMACFramedFrameUnderNoiseAndCFO(t *testing.T) {
	p := Params20()
	l := mustLink(t, p, wifi.CanonicalCompensation)
	rng := rand.New(rand.NewSource(31))
	f := &Frame{Seq: 5, Data: []byte{0xDE, 0xAD}}
	sig, err := l.TransmitFrameMAC(f, 0x0042, 7)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	const trials = 12
	for i := 0; i < trials; i++ {
		m, err := channel.NewMedium(channel.Config{
			SampleRate: p.SampleRate,
			SNRdB:      4,
			FreqOffset: channel.DefaultFreqOffset,
			Pad:        600,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := l.ReceiveFrame(m.Transmit(sig))
		if err != nil {
			continue
		}
		if got.Seq != f.Seq || !bytes.Equal(got.Data, f.Data) {
			t.Fatalf("trial %d: silently wrong frame %+v", i, got)
		}
		delivered++
	}
	if delivered < trials-2 {
		t.Errorf("delivered %d/%d MAC-framed frames at 4 dB", delivered, trials)
	}
}

func TestMACFramedBroadcastReachesZigBeeToo(t *testing.T) {
	// Dual reception with real MAC framing: the ZigBee neighbour parses
	// PPDU → MPDU → SymBee payload.
	l := mustLink(t, Params20(), 0)
	f := &Frame{Seq: 2, Flags: 0x2, Data: []byte("RSV")}
	sig, err := l.TransmitFrameMAC(f, 0x0007, 3)
	if err != nil {
		t.Fatal(err)
	}
	demod, err := zigbee.NewDemodulator(20e6)
	if err != nil {
		t.Fatal(err)
	}
	msdu, err := demod.ReceiveAt(sig, 0, zigbee.OrderMSBFirst)
	if err != nil {
		t.Fatal(err)
	}
	mpdu, err := zigbee.ParseMPDU(msdu)
	if err != nil {
		t.Fatal(err)
	}
	if mpdu.Src != 0x0007 || mpdu.Dest != zigbee.BroadcastAddr {
		t.Errorf("mpdu = %+v", mpdu)
	}
	got, err := DecodeBroadcastPayload(mpdu.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, f.Data) {
		t.Errorf("data = %q", got.Data)
	}
}
