package core

import (
	"errors"
	"fmt"
)

// Flag bits carried in Frame.Flags by the Messenger protocol.
const (
	// FlagMore marks a fragment that is not the last of its message.
	FlagMore = 0x1
)

// Messenger errors.
var (
	// ErrEmptyMessage is returned when fragmenting a zero-length message.
	ErrEmptyMessage = errors.New("core: empty message")
	// ErrFragmentGap is returned by the Reassembler when a fragment's
	// sequence number does not continue the message being assembled.
	ErrFragmentGap = errors.New("core: fragment sequence gap")
)

// Messenger fragments arbitrary byte messages into SymBee frames. One
// ZigBee packet carries at most MaxDataBytes of frame data, so longer
// messages span several packets, chained by consecutive sequence
// numbers with FlagMore set on every fragment but the last.
//
// A Messenger is a sender-side object; it is not safe for concurrent
// use.
type Messenger struct {
	link *Link
	seq  byte
}

// NewMessenger wraps a link. link may be nil for a Messenger used only
// to Fragment (the reliability layer modulates through its own
// transport).
func NewMessenger(link *Link) *Messenger {
	return &Messenger{link: link}
}

// Seq returns the next sequence number the Messenger will assign.
func (m *Messenger) Seq() byte { return m.seq }

// SetSeq rewinds (or advances) the sequence counter. The reliability
// layer uses this to re-fragment the unacknowledged tail of a message
// at a different fragment size without breaking sequence continuity.
func (m *Messenger) SetSeq(s byte) { m.seq = s }

// Fragment splits msg into frames ready for transmission, consuming
// sequence numbers.
func (m *Messenger) Fragment(msg []byte) ([]*Frame, error) {
	return m.FragmentSize(msg, MaxDataBytes)
}

// FragmentSize is Fragment with an explicit fragment capacity of
// 1..MaxDataBytes data bytes per frame. Smaller fragments trade goodput
// for robustness: the reliability layer re-cuts at MaxCodedDataBytes
// when it escalates to Hamming-coded frames.
func (m *Messenger) FragmentSize(msg []byte, segSize int) ([]*Frame, error) {
	if len(msg) == 0 {
		return nil, ErrEmptyMessage
	}
	if segSize < 1 || segSize > MaxDataBytes {
		return nil, fmt.Errorf("%w: fragment size %d", ErrBadLength, segSize)
	}
	nFrames := (len(msg) + segSize - 1) / segSize
	frames := make([]*Frame, 0, nFrames)
	for i := 0; i < nFrames; i++ {
		lo := i * segSize
		hi := lo + segSize
		if hi > len(msg) {
			hi = len(msg)
		}
		f := &Frame{
			Seq:  m.seq,
			Data: append([]byte{}, msg[lo:hi]...),
		}
		if i < nFrames-1 {
			f.Flags = FlagMore
		}
		m.seq++
		frames = append(frames, f)
	}
	return frames, nil
}

// Signals fragments msg and modulates every fragment into its ZigBee
// baseband transmission.
func (m *Messenger) Signals(msg []byte) ([][]complex128, error) {
	frames, err := m.Fragment(msg)
	if err != nil {
		return nil, err
	}
	out := make([][]complex128, len(frames))
	for i, f := range frames {
		sig, err := m.link.TransmitFrame(f)
		if err != nil {
			return nil, fmt.Errorf("core: fragment %d: %w", i, err)
		}
		out[i] = sig
	}
	return out, nil
}

// Reassembler rebuilds messages from received frames. It tolerates
// duplicate deliveries of the current fragment but reports gaps, after
// which it discards the partial message and resynchronizes on the next
// message start.
//
// Nothing marks a fragment as a message start — sequence numbers run
// continuously across messages — so the only recognizable boundary is
// the far side of a final fragment (FlagMore clear). After a gap the
// reassembler therefore drops frames until one with FlagMore clear has
// passed; the frame after that begins a fresh message. Accepting
// arbitrary frames right after a gap instead (as this type originally
// did) delivers truncated messages: lose the last fragment of one
// message and the tail fragments of the NEXT message come back as a
// complete short message.
type Reassembler struct {
	buf     []byte
	nextSeq byte
	active  bool
	resync  bool
}

// Add feeds one received frame. When the frame completes a message the
// message is returned with done=true. A sequence gap returns
// ErrFragmentGap and discards the partial message; subsequent frames
// are silently dropped (msg=nil, done=false, err=nil) until a message
// boundary restores synchronization.
func (r *Reassembler) Add(f *Frame) (msg []byte, done bool, err error) {
	if r.resync {
		// Still inside a message whose head is lost: every fragment up
		// to and including the next final one belongs to it.
		if f.Flags&FlagMore == 0 {
			r.resync = false
		}
		return nil, false, nil
	}
	if r.active {
		switch {
		case f.Seq == r.nextSeq-1 && f.Flags&FlagMore != 0:
			return nil, false, nil // duplicate of the previous fragment
		case f.Seq != r.nextSeq:
			r.Reset()
			// The gap frame itself is consumed by resynchronization:
			// if it ends a message the stream is back at a boundary,
			// otherwise keep dropping until one does.
			r.resync = f.Flags&FlagMore != 0
			return nil, false, fmt.Errorf("%w: got seq %d", ErrFragmentGap, f.Seq)
		}
	}
	r.active = true
	r.nextSeq = f.Seq + 1
	r.buf = append(r.buf, f.Data...)
	if f.Flags&FlagMore != 0 {
		return nil, false, nil
	}
	out := r.buf
	r.Reset()
	return out, true, nil
}

// Reset returns the reassembler to a fresh state: any partially
// assembled message is discarded and the next frame fed to Add starts a
// new message, even if a gap had left the reassembler resynchronizing.
func (r *Reassembler) Reset() {
	r.buf = nil
	r.active = false
	r.nextSeq = 0
	r.resync = false
}
