package core

import (
	"bytes"
	"math/rand"
	"testing"

	"symbee/internal/channel"
	"symbee/internal/wifi"
)

// TestDecodeToleratesClockOffset checks a realism property the paper's
// testbed had implicitly: ZigBee crystals are ±40 ppm, so the receiver's
// sample grid slides relative to the transmission by a few samples over
// a packet. The stable-run margins (run ≈100 samples, window 84) must
// absorb that drift.
func TestDecodeToleratesClockOffset(t *testing.T) {
	p := Params20()
	l := mustLink(t, p, wifi.CanonicalCompensation)
	rng := rand.New(rand.NewSource(71))
	bits := randomBits(80, rng)
	sig, err := l.TransmitBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	for _, ppm := range []float64{-40, -20, 20, 40} {
		drifted := channel.ApplySFO(sig, ppm)
		m, err := channel.NewMedium(channel.Config{
			SampleRate: p.SampleRate,
			SNRdB:      8,
			FreqOffset: channel.DefaultFreqOffset,
			Pad:        400,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := l.ReceiveBits(m.Transmit(drifted), len(bits))
		if err != nil {
			t.Errorf("ppm %+.0f: %v", ppm, err)
			continue
		}
		if !bytes.Equal(got, bits) {
			errs := 0
			for k := range bits {
				if got[k] != bits[k] {
					errs++
				}
			}
			t.Errorf("ppm %+.0f: %d/%d bit errors", ppm, errs, len(bits))
		}
	}
}
