package splitmix

import "testing"

// TestSplitMatchesReferenceDerivation pins the exact derivation (the
// splitmix64 finalizer over seed + (stream+1)·φ). The multi-sender
// golden behavior depends on these bits: changing the constants would
// silently re-schedule every seeded scenario in the repo.
func TestSplitMatchesReferenceDerivation(t *testing.T) {
	ref := func(seed int64, stream int) int64 {
		z := uint64(seed) + uint64(stream+1)*0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return int64(z ^ (z >> 31))
	}
	for _, seed := range []int64{0, 1, 17, -3, 1 << 40} {
		for _, stream := range []int{NoiseStream, 0, 1, 7, 255, 1023} {
			if got, want := Split(seed, stream), ref(seed, stream); got != want {
				t.Errorf("Split(%d, %d) = %d, want %d", seed, stream, got, want)
			}
		}
	}
}

// TestSplitStreamsDistinct checks that nearby seeds and streams land on
// distinct derived seeds (the whole point of the finalizer mix).
func TestSplitStreamsDistinct(t *testing.T) {
	seen := make(map[int64][2]int64)
	for seed := int64(0); seed < 8; seed++ {
		for stream := -1; stream < 1024; stream++ {
			d := Split(seed, stream)
			if prev, dup := seen[d]; dup {
				t.Fatalf("Split(%d, %d) collides with Split(%d, %d): %d",
					seed, stream, prev[0], prev[1], d)
			}
			seen[d] = [2]int64{seed, int64(stream)}
		}
	}
}

// TestNoiseStreamIsRawFinalizer pins the -1 convention: the noise
// stream's increment vanishes, so its seed is the finalizer of the
// scenario seed itself (what the legacy multi-sender AWGN used).
func TestNoiseStreamIsRawFinalizer(t *testing.T) {
	if Split(42, NoiseStream) == Split(42, 0) {
		t.Error("noise stream equals sender stream 0")
	}
}

// TestNewDeterministic checks New hands out reproducible generators.
func TestNewDeterministic(t *testing.T) {
	a, b := New(9, 3), New(9, 3)
	for i := 0; i < 16; i++ {
		if av, bv := a.Int63(), b.Int63(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
	if New(9, 3).Int63() == New(9, 4).Int63() {
		t.Error("adjacent streams start identically")
	}
}
