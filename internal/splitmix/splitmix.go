// Package splitmix derives independent, reproducible random streams
// from one scenario seed. Every seeded component that needs more than
// one RNG — the shared-medium simulator's per-sender schedules
// (internal/medium), the legacy multi-sender scenario (internal/link)
// and the fault injector's jam-noise stream (internal/channel) — splits
// its streams through this package, so "stream k of seed s" means the
// same thing everywhere and adjacent seeds never correlate.
//
// The derivation is the splitmix64 finalizer over seed + (stream+1)·φ
// (the 64-bit golden-ratio increment). It is stateless: deriving stream
// k never consumes randomness from any other stream, which is what lets
// the event-driven medium admit senders lazily in schedule order while
// reproducing the dense reference bit-for-bit.
package splitmix

import "math/rand"

// NoiseStream is the conventional stream index of a component's
// receiver/jam noise source: senders occupy streams 0..N-1, the noise
// that is added after every sender's contribution lives at -1.
const NoiseStream = -1

// ReverseStream is the conventional stream index of reverse-path
// (WiFi→ZigBee downlink) fault draws: ack loss lives on its own stream
// so toggling reverse faults never shifts the forward loss/burst
// schedule, and vice versa.
const ReverseStream = -2

// CollisionStream is the conventional stream index of full-duplex
// collision draws: whether a forward frame and an overlapping
// reverse-channel transmission destroy each other is decided on this
// stream, independent of both the forward fault schedule and the
// reverse loss schedule.
const CollisionStream = -3

// ScheduleStream is the conventional stream index of forward-path
// fault-schedule draws (frame loss): the fault injector's per-frame
// loss uniforms live here, so the forward schedule is decorrelated
// from adjacent scenario seeds just like every side stream.
const ScheduleStream = -4

// JitterStream is the conventional stream index of protocol-timing
// draws: the ARQ session's retransmission jitter lives on its own
// stream, so timing randomization never perturbs (or is perturbed by)
// the channel fault schedules derived from the same seed.
const JitterStream = -5

// Split derives stream's private seed from the scenario seed.
// Stream -1 (NoiseStream) maps to the raw finalizer of seed itself.
func Split(seed int64, stream int) int64 {
	z := uint64(seed) + uint64(stream+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// New returns a math/rand generator seeded with Split(seed, stream).
func New(seed int64, stream int) *rand.Rand {
	return rand.New(rand.NewSource(Split(seed, stream)))
}
