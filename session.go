package symbee

import (
	"time"

	"symbee/internal/channel"
	"symbee/internal/reliable"
)

// Reliability re-exports: the bidirectional ARQ session of
// internal/reliable through the public surface.
type (
	// Session is the ARQ send side: fragment, transmit under a sliding
	// window, retransmit on loss, escalate coding on persistent loss.
	Session = reliable.Session
	// SessionConfig parameterizes a Session (see DefaultSessionConfig).
	SessionConfig = reliable.Config
	// SessionReport summarizes one Session.Send.
	SessionReport = reliable.Report
	// Transport carries frames forward and surfaces acks asynchronously;
	// SimLink is the simulated implementation.
	Transport = reliable.Transport
	// Ack is the cumulative acknowledgment on the reverse channel.
	Ack = reliable.Ack
	// AckEvent is one ack arriving at the sender, stamped with its
	// generation and arrival times on the transport clock.
	AckEvent = reliable.AckEvent
	// DownlinkScheme selects the WiFi→ZigBee reverse-channel model.
	DownlinkScheme = reliable.DownlinkScheme
	// ReverseStats is a transport's reverse-channel ledger.
	ReverseStats = reliable.ReverseStats
	// SimLink runs frames through the simulated PHY and a modeled ack
	// downlink.
	SimLink = reliable.SimLink
	// SimConfig parameterizes a SimLink (see DefaultSimConfig).
	SimConfig = reliable.SimConfig
	// FaultConfig is the simulated channel fault profile.
	FaultConfig = channel.FaultConfig
	// Clock abstracts session time: virtual for simulation, wall for
	// live pacing.
	Clock = reliable.Clock
)

// Downlink scheme selectors.
const (
	// DownlinkIdeal: instant, free, lossless acks (baselines only).
	DownlinkIdeal = reliable.DownlinkIdeal
	// DownlinkCMorse: ≈38 ms one-byte acks at ≈25% duty.
	DownlinkCMorse = reliable.DownlinkCMorse
	// DownlinkFreeBee: ≈513 ms one-byte acks at ≈0.6% duty.
	DownlinkFreeBee = reliable.DownlinkFreeBee
	// DownlinkDCTC: ≈19 ms one-byte acks at ≈26% duty — the fastest
	// modeled operating point.
	DownlinkDCTC = reliable.DownlinkDCTC
	// DownlinkEMF: ≈20 ms one-byte acks at ≈17% duty — C-Morse-class
	// latency with a smaller collision cross-section.
	DownlinkEMF = reliable.DownlinkEMF
)

// Reliability constructors and defaults.
var (
	// DownlinkSchemes lists every modeled reverse channel, ideal first.
	DownlinkSchemes = reliable.DownlinkSchemes
	// DefaultSessionConfig is the baseline session configuration.
	DefaultSessionConfig = reliable.DefaultConfig
	// DefaultSimConfig is the baseline simulated link: clean channel,
	// C-Morse ack downlink.
	DefaultSimConfig = reliable.DefaultSimConfig
	// DefaultFaultConfig is the clean fault profile baseline.
	DefaultFaultConfig = channel.DefaultFaultConfig
	// NewSimLink builds a simulated link from a SimConfig.
	NewSimLink = reliable.NewSimLink
	// NewVirtualClock returns a discrete-event clock starting at zero.
	NewVirtualClock = reliable.NewVirtualClock
	// NewWallClock returns a real-time clock.
	NewWallClock = reliable.NewWallClock
)

// sessionOptions is the resolved option state of NewSession.
type sessionOptions struct {
	cfg       SessionConfig
	sim       SimConfig
	transport Transport
}

// SessionOption configures NewSession. The zero configuration is a
// working session over a clean simulated link with the C-Morse ack
// downlink; pass WithTransport to drive a transport of your own.
type SessionOption func(*sessionOptions)

// WithTransport runs the session over tx instead of building a
// simulated link. The downlink, fault and ack-repeat options only
// apply to the built-in link and are ignored with a custom transport.
func WithTransport(tx Transport) SessionOption {
	return func(o *sessionOptions) { o.transport = tx }
}

// WithDownlink selects the reverse-channel model of the built-in
// simulated link (default DownlinkCMorse).
func WithDownlink(d DownlinkScheme) SessionOption {
	return func(o *sessionOptions) { o.sim.Downlink = d }
}

// WithAckRepeat transmits each ack n times on the built-in link's
// downlink — loss protection at the price of duplicate arrivals.
func WithAckRepeat(n int) SessionOption {
	return func(o *sessionOptions) { o.sim.AckRepeat = n }
}

// WithFaults applies a fault profile to the built-in simulated link.
func WithFaults(fc FaultConfig) SessionOption {
	return func(o *sessionOptions) { o.sim.Faults = fc }
}

// WithWindow sets the maximum number of in-flight frames.
func WithWindow(n int) SessionOption {
	return func(o *sessionOptions) { o.cfg.Window = n }
}

// WithRTO sets the initial and maximum retransmission timeouts. The
// session still floors them against the transport's ack latency.
func WithRTO(initial, max time.Duration) SessionOption {
	return func(o *sessionOptions) {
		o.cfg.InitialRTO = initial
		o.cfg.MaxRTO = max
	}
}

// WithRetries sets how many consecutive no-progress flights are
// tolerated before Send fails with ErrTimeout.
func WithRetries(n int) SessionOption {
	return func(o *sessionOptions) { o.cfg.MaxRetries = n }
}

// WithEscalation sets the coding-mode thresholds: escalate to
// Hamming-coded frames after `after` silent flights, de-escalate after
// `deescalateAfter` clean ones. Zero disables either transition.
func WithEscalation(after, deescalateAfter int) SessionOption {
	return func(o *sessionOptions) {
		o.cfg.EscalateAfter = after
		o.cfg.DeescalateAfter = deescalateAfter
	}
}

// WithClock drives the session from c (default: a fresh virtual clock).
func WithClock(c Clock) SessionOption {
	return func(o *sessionOptions) { o.cfg.Clock = c }
}

// WithSeed pins the jitter and fault schedules for reproducibility.
func WithSeed(seed int64) SessionOption {
	return func(o *sessionOptions) {
		o.cfg.Seed = seed
		o.sim.Faults.Seed = seed
	}
}

// WithSessionMetrics shares an external metrics registry across the
// session and the built-in link.
func WithSessionMetrics(m *Metrics) SessionOption {
	return func(o *sessionOptions) {
		o.cfg.Metrics = m
		o.sim.Metrics = m
	}
}

// NewSession builds a reliable ARQ session, mirroring the option style
// of NewReceiver and NewPool. Without WithTransport it also builds the
// simulated link the session runs over:
//
//	sess, err := symbee.NewSession(symbee.WithDownlink(symbee.DownlinkFreeBee),
//		symbee.WithWindow(4), symbee.WithSeed(7))
//	rep, err := sess.Send(ctx, msg)
//
// To reach the receive side (delivered messages, reverse-channel
// stats), build the link explicitly and hand it in:
//
//	link, err := symbee.NewSimLink(symbee.DefaultSimConfig())
//	sess, err := symbee.NewSession(symbee.WithTransport(link))
func NewSession(opts ...SessionOption) (*Session, error) {
	o := sessionOptions{cfg: DefaultSessionConfig(), sim: DefaultSimConfig()}
	for _, opt := range opts {
		opt(&o)
	}
	tx := o.transport
	if tx == nil {
		link, err := NewSimLink(o.sim)
		if err != nil {
			return nil, err
		}
		tx = link
	}
	return reliable.NewSession(tx, o.cfg)
}
