package symbee

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestPublicQuickstartPath(t *testing.T) {
	link, err := NewLink(Params20(), CanonicalCompensation)
	if err != nil {
		t.Fatal(err)
	}
	f := &Frame{Seq: 1, Flags: 0, Data: []byte("hi, wifi!")}
	sig, err := link.TransmitFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(ChannelConfig{Scenario: "outdoor", Distance: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	capture, err := ch.Transmit(sig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := link.ReceiveFrame(capture)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != f.Seq || !bytes.Equal(got.Data, f.Data) {
		t.Errorf("frame = %+v", got)
	}
}

func TestNewChannelValidation(t *testing.T) {
	if _, err := NewChannel(ChannelConfig{Scenario: "moonbase"}); err == nil {
		t.Error("expected error for unknown scenario")
	}
	ch, err := NewChannel(ChannelConfig{Scenario: "office"})
	if err != nil {
		t.Fatal(err)
	}
	if ch.cfg.SampleRate != 20e6 || ch.cfg.Distance != 5 {
		t.Errorf("defaults not applied: %+v", ch.cfg)
	}
}

func TestChannelDeterministicPerSeed(t *testing.T) {
	link, err := NewLink(Params20(), CanonicalCompensation)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := link.TransmitFrame(&Frame{Seq: 9, Data: []byte("abc")})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed int64) []complex128 {
		ch, err := NewChannel(ChannelConfig{Scenario: "office", Distance: 8, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		out, err := ch.Transmit(sig)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b, c := mk(5), mk(5), mk(6)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if !same {
		t.Error("same seed should reproduce the capture")
	}
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds should differ")
	}
}

func TestMessengerFragmentation(t *testing.T) {
	link, err := NewLink(Params20(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMessenger(link)

	if _, err := m.Fragment(nil); !errors.Is(err, ErrEmptyMessage) {
		t.Errorf("err = %v", err)
	}

	frames, err := m.Fragment(make([]byte, MaxDataBytes*2+3))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("fragments = %d, want 3", len(frames))
	}
	for i, f := range frames {
		if f.Seq != byte(i) {
			t.Errorf("fragment %d seq = %d", i, f.Seq)
		}
		wantMore := i < 2
		if (f.Flags&FlagMore != 0) != wantMore {
			t.Errorf("fragment %d more-flag = %v, want %v", i, f.Flags&FlagMore != 0, wantMore)
		}
	}
	if len(frames[2].Data) != 3 {
		t.Errorf("last fragment size = %d", len(frames[2].Data))
	}
	// Sequence numbers continue across messages.
	next, err := m.Fragment([]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if next[0].Seq != 3 {
		t.Errorf("next seq = %d, want 3", next[0].Seq)
	}
}

func TestMessengerReassemblerRoundTrip(t *testing.T) {
	link, err := NewLink(Params20(), 0)
	if err != nil {
		t.Fatal(err)
	}
	f := func(msg []byte) bool {
		if len(msg) == 0 || len(msg) > 200 {
			return true
		}
		m := NewMessenger(link)
		frames, err := m.Fragment(msg)
		if err != nil {
			return false
		}
		var r Reassembler
		for i, fr := range frames {
			got, done, err := r.Add(fr)
			if err != nil {
				return false
			}
			if i < len(frames)-1 {
				if done {
					return false
				}
				continue
			}
			return done && bytes.Equal(got, msg)
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReassemblerGapAndDuplicate(t *testing.T) {
	link, err := NewLink(Params20(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMessenger(link)
	frames, err := m.Fragment(make([]byte, MaxDataBytes*3))
	if err != nil {
		t.Fatal(err)
	}
	var r Reassembler
	if _, _, err := r.Add(frames[0]); err != nil {
		t.Fatal(err)
	}
	// Duplicate of the current fragment is tolerated.
	if _, _, err := r.Add(frames[0]); err != nil {
		t.Fatalf("duplicate rejected: %v", err)
	}
	// Skipping fragment 1 is a gap.
	if _, _, err := r.Add(frames[2]); !errors.Is(err, ErrFragmentGap) {
		t.Fatalf("err = %v, want ErrFragmentGap", err)
	}
	// After the gap the reassembler accepts a fresh message.
	m2 := NewMessenger(link)
	fresh, err := m2.Fragment([]byte("ok"))
	if err != nil {
		t.Fatal(err)
	}
	msg, done, err := r.Add(fresh[0])
	if err != nil || !done || !bytes.Equal(msg, []byte("ok")) {
		t.Errorf("recovery failed: %v %v %v", msg, done, err)
	}
}

func TestMessengerSignalsEndToEnd(t *testing.T) {
	link, err := NewLink(Params20(), CanonicalCompensation)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("symbol-level cross-technology")
	m := NewMessenger(link)
	signals, err := m.Signals(msg)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(ChannelConfig{Scenario: "classroom", Distance: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var r Reassembler
	for _, sig := range signals {
		capture, err := ch.Transmit(sig)
		if err != nil {
			t.Fatal(err)
		}
		frame, err := link.ReceiveFrame(capture)
		if err != nil {
			t.Fatal(err)
		}
		got, done, err := r.Add(frame)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			if !bytes.Equal(got, msg) {
				t.Errorf("message = %q, want %q", got, msg)
			}
			return
		}
	}
	t.Error("message never completed")
}

func TestBroadcastPublicAPI(t *testing.T) {
	payload, err := EncodeFrame(&Frame{Seq: 2, Data: []byte("bc")})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBroadcastPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, []byte("bc")) {
		t.Errorf("data = %q", got.Data)
	}
}

func TestParamsConstants(t *testing.T) {
	if Params20().RawBitRate() != RawBitRate {
		t.Errorf("RawBitRate mismatch")
	}
	if Bit0Byte != 0x67 || Bit1Byte != 0xEF {
		t.Error("codeword constants wrong")
	}
}
