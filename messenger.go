package symbee

import "symbee/internal/core"

// Flag bits carried in Frame.Flags by the Messenger protocol.
const (
	// FlagMore marks a fragment that is not the last of its message.
	FlagMore = core.FlagMore
)

// Messenger errors.
var (
	// ErrEmptyMessage is returned when fragmenting a zero-length message.
	ErrEmptyMessage = core.ErrEmptyMessage
	// ErrFragmentGap is returned by the Reassembler when a fragment's
	// sequence number does not continue the message being assembled.
	ErrFragmentGap = core.ErrFragmentGap
)

// Messenger fragments arbitrary byte messages into SymBee frames; the
// implementation lives in internal/core so the reliability layer
// (internal/reliable) can share it. See core.Messenger for the full
// protocol contract.
type Messenger = core.Messenger

// Reassembler rebuilds messages from received frames, tolerating
// duplicates and resynchronizing after gaps. See core.Reassembler.
type Reassembler = core.Reassembler

// NewMessenger wraps a link.
var NewMessenger = core.NewMessenger
