package symbee

import (
	"context"

	"symbee/internal/core"
	"symbee/internal/stream"
)

// Streaming re-exports: the real-time receiver pipeline of
// internal/stream through the public surface.
type (
	// Receiver is a single-stream incremental receiver: push IQ or
	// phase chunks, drain decode events.
	Receiver = stream.Receiver
	// Pool is the sharded multi-stream receiver: N workers, each owning
	// the sessions of the streams hashed to it.
	Pool = stream.Pool
	// Chunk is one unit of pool ingestion.
	Chunk = stream.Chunk
	// Metrics is the pipeline instrumentation registry.
	Metrics = stream.Metrics
	// MetricsSnapshot is the JSON-stable point-in-time metrics state.
	MetricsSnapshot = stream.Snapshot
	// Event is one decode occurrence (lock, frame, error) on one stream.
	Event = stream.Event
	// StreamEventKind discriminates Event kinds.
	StreamEventKind = core.StreamEventKind
)

// Event kinds.
const (
	// EventLock: a preamble fold crossed the capture threshold.
	EventLock = core.EventLock
	// EventFrame: a frame decoded and passed its checksum.
	EventFrame = core.EventFrame
	// EventDecodeError: a locked preamble failed to decode.
	EventDecodeError = core.EventDecodeError
)

// NewMetrics returns a zeroed metrics registry, shareable across
// receivers, pools and reliable sessions.
var NewMetrics = stream.NewMetrics

// streamOptions is the resolved option state shared by NewReceiver and
// NewPool.
type streamOptions struct {
	cfg stream.Config
	ctx context.Context
}

// StreamOption configures NewReceiver and NewPool. All public streaming
// entry points are option-based; the zero configuration is a working
// receiver (Params20, canonical compensation, GOMAXPROCS workers,
// lossless backpressure).
type StreamOption func(*streamOptions)

// WithParams selects the receiver parameter set (default Params20).
func WithParams(p Params) StreamOption {
	return func(o *streamOptions) { o.cfg.Params = p }
}

// WithCompensation overrides the CFO compensation the decode chain
// applies (default CanonicalCompensation; use 0 for baseband-aligned
// captures such as simulation output).
func WithCompensation(c float64) StreamOption {
	return func(o *streamOptions) { o.cfg.Compensation = c }
}

// WithMetrics shares an external metrics registry instead of allocating
// a private one.
func WithMetrics(m *Metrics) StreamOption {
	return func(o *streamOptions) { o.cfg.Metrics = m }
}

// WithWorkers sets the pool's shard-worker count (default GOMAXPROCS).
// It has no effect on a single-stream receiver.
func WithWorkers(n int) StreamOption {
	return func(o *streamOptions) { o.cfg.Workers = n }
}

// WithRealTime switches the pool to receiver-paced backpressure: each
// worker queue holds queueDepth chunks and Ingest drops (and counts)
// instead of blocking when a queue is full. Without it the pool is
// producer-paced and lossless.
func WithRealTime(queueDepth int) StreamOption {
	return func(o *streamOptions) {
		o.cfg.DropWhenFull = true
		if queueDepth > 0 {
			o.cfg.QueueDepth = queueDepth
		}
	}
}

// WithEvents registers a pool event callback. It is invoked from worker
// goroutines (serialized per stream, concurrent across streams).
func WithEvents(fn func(Event)) StreamOption {
	return func(o *streamOptions) { o.cfg.OnEvent = fn }
}

// WithContext binds the pool to ctx: cancellation closes the pool,
// flushing open sessions and joining the workers.
func WithContext(ctx context.Context) StreamOption {
	return func(o *streamOptions) { o.ctx = ctx }
}

func resolveStreamOptions(opts []StreamOption) streamOptions {
	o := streamOptions{ctx: context.Background()}
	o.cfg.Params = Params20()
	o.cfg.Compensation = CanonicalCompensation
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// NewReceiver builds a single-stream incremental receiver for the given
// parameter set: push IQ (or phase) chunks of any size, drain events.
// It decodes exactly what a batch decode of the concatenated stream
// would.
//
//	rx, err := symbee.NewReceiver(symbee.Params20(), symbee.WithCompensation(0))
//	rx.PushIQ(capture)
//	rx.Flush()
//	for _, ev := range rx.Drain() { ... }
func NewReceiver(p Params, opts ...StreamOption) (*Receiver, error) {
	o := resolveStreamOptions(opts)
	o.cfg.Params = p
	if o.cfg.Metrics == nil {
		o.cfg.Metrics = NewMetrics()
	}
	return stream.NewReceiver(o.cfg.Params, o.cfg.Compensation, o.cfg.Metrics)
}

// NewPool builds the sharded multi-stream receiver pool. With no
// options it listens with Params20, canonical compensation and one
// worker per CPU, blocking producers when saturated.
//
//	pool, err := symbee.NewPool(symbee.WithWorkers(4), symbee.WithRealTime(64))
//	pool.Ingest(symbee.Chunk{Stream: id, IQ: samples})
//	defer pool.Close()
func NewPool(opts ...StreamOption) (*Pool, error) {
	o := resolveStreamOptions(opts)
	return stream.NewPoolContext(o.ctx, o.cfg)
}
