// Package symbee is a Go implementation of SymBee, the symbol-level
// ZigBee→WiFi cross-technology communication (CTC) scheme of Wang, Kim
// and He (ICDCS 2018), together with the full simulation substrate the
// reproduction runs on.
//
// A SymBee sender is any IEEE 802.15.4 (ZigBee) node: it conveys bits to
// a WiFi receiver simply by placing codeword bytes in its packet payload
// (0x67 per 0-bit, 0xEF per 1-bit — "payload encoding"). The WiFi
// receiver recycles the phase output of its always-on packet-detection
// autocorrelation: each codeword cross-observes as an 84-sample run of
// stable phase at ±4π/5, decoded by sign with majority voting. The raw
// rate is 31.25 kbps — ≈145× the fastest packet-level ZigBee→WiFi CTC.
//
// # Quick start
//
//	link, err := symbee.NewLink(symbee.Params20(), symbee.CanonicalCompensation)
//	sig, err := link.TransmitFrame(&symbee.Frame{Seq: 1, Data: []byte("hi")})
//	ch, err := symbee.NewChannel(symbee.ChannelConfig{Scenario: "office", Distance: 10, Seed: 1})
//	capture, err := ch.Transmit(sig)
//	frame, err := link.ReceiveFrame(capture)
//
// For multi-frame payloads use Messenger, which fragments and
// reassembles transparently. The underlying layers (802.15.4 PHY, WiFi
// front-end, channel models, baseline CTC schemes, experiment harness)
// live in internal/ packages; cmd/symbeebench regenerates every figure
// of the paper's evaluation.
package symbee

import (
	"errors"
	"fmt"

	"symbee/internal/channel"
	"symbee/internal/coding"
	"symbee/internal/core"
	"symbee/internal/wifi"
	"symbee/internal/zigbee"
)

// Re-exported core types. The aliases make the internal implementation
// usable through the public module surface.
type (
	// Params holds the sample-rate-dependent constants of the scheme.
	Params = core.Params
	// Frame is one SymBee message frame.
	Frame = core.Frame
	// Link is the full encode→modulate / front-end→decode pipeline.
	Link = core.Link
	// Decoder converts WiFi idle-listening phase streams to bits.
	Decoder = core.Decoder
	// DetectedBit is one unsynchronized detection.
	DetectedBit = core.DetectedBit
)

// Re-exported constructors and constants.
var (
	// Params20 returns the 20 MHz WiFi (20 Msps) parameter set.
	Params20 = core.Params20
	// Params40 returns the 40 MHz WiFi (40 Msps) parameter set (§VI-B).
	Params40 = core.Params40
	// NewLink builds a link; compensation is CanonicalCompensation for
	// realistic channels and 0 for baseband-aligned captures.
	NewLink = core.NewLink
	// NewDecoder builds a standalone phase decoder.
	NewDecoder = core.NewDecoder
	// EncodeFrame serializes a frame into ZigBee payload bytes.
	EncodeFrame = core.EncodeFrame
	// EncodeBits maps raw bits into ZigBee payload bytes (preamble
	// prepended).
	EncodeBits = core.EncodeBits
	// DecodeBroadcastPayload is the ZigBee-side receiver of a
	// cross-technology broadcast (§VI-A).
	DecodeBroadcastPayload = core.DecodeBroadcastPayload
)

// Codeword and frame constants.
const (
	// Bit0Byte is the payload codeword for bit 0 (symbols 6,7).
	Bit0Byte = core.Bit0Byte
	// Bit1Byte is the payload codeword for bit 1 (symbols E,F).
	Bit1Byte = core.Bit1Byte
	// MaxDataBytes is the largest Frame.Data payload.
	MaxDataBytes = core.MaxDataBytes
	// RawBitRate is the instantaneous SymBee data rate in bits/second.
	RawBitRate = 31250.0
)

// CanonicalCompensation is the channel-frequency-offset correction of
// Appendix B: +4π/5, identical for every overlapping WiFi/ZigBee channel
// pair.
var CanonicalCompensation = wifi.CanonicalCompensation

// Link-layer coding re-exports (the Fig. 21 robustness option).
var (
	// HammingEncodeBits protects a bit string with Hamming(7,4).
	HammingEncodeBits = coding.HammingEncodeBits
	// HammingDecodeBits decodes and single-error-corrects the stream.
	HammingDecodeBits = coding.HammingDecodeBits
	// BytesToBits and BitsToBytes convert between packed bytes and the
	// one-bit-per-byte representation used on the SymBee air interface.
	BytesToBits = coding.BytesToBits
	BitsToBytes = coding.BitsToBytes
)

// ReceiveZigBee decodes a capture as a standard ZigBee receiver would —
// the other half of a cross-technology broadcast (§VI-A): the same
// packet that WiFi reads from phase patterns is a legitimate ZigBee
// packet whose payload a ZigBee neighbour reads natively. It returns
// the MAC payload; pass it to DecodeBroadcastPayload for the SymBee
// message.
func ReceiveZigBee(capture []complex128, sampleRate float64) ([]byte, error) {
	demod, err := zigbee.NewDemodulator(sampleRate)
	if err != nil {
		return nil, err
	}
	return demod.Receive(capture, zigbee.OrderMSBFirst)
}

// ChannelConfig selects a simulated radio environment by scenario name
// ("outdoor", "library", "classroom", "dormitory", "office", "mall",
// "office-midnight" — the paper's Fig. 15 sites).
type ChannelConfig struct {
	// Scenario preset name.
	Scenario string
	// Distance sender→receiver in meters.
	Distance float64
	// TxPowerDBm of the ZigBee sender (0 dBm is the TelosB maximum).
	TxPowerDBm float64
	// Walls between sender and receiver (NLOS).
	Walls int
	// SampleRate of the receiving WiFi front-end (default 20 Msps).
	SampleRate float64
	// SpeedMps, when positive, puts the sender in motion (Fig. 23):
	// Doppler-rate fading plus body/bag blockage tuned to the speed.
	SpeedMps float64
	// SameTechnology marks the receiver as tuned to the sender's own
	// channel (a ZigBee neighbour receiving the broadcast) instead of a
	// WiFi device observing from an offset center frequency: no carrier
	// offset is applied.
	SameTechnology bool
	// Seed makes the channel reproducible.
	Seed int64
}

// DefaultChannelConfig returns the baseline environment: the outdoor
// scenario at 5 m, TelosB-maximum transmit power, a 20 Msps receiver
// and no walls, motion or seed offset.
func DefaultChannelConfig() ChannelConfig {
	return ChannelConfig{
		Scenario:   "outdoor",
		Distance:   5,
		SampleRate: 20e6,
	}
}

// Channel config validation errors.
var (
	errChanNegative = errors.New("symbee: channel parameter must not be negative")
)

// Validate reports the first structural problem with the config. The
// scenario name itself is resolved (and rejected) by NewChannel via
// the preset registry.
func (c ChannelConfig) Validate() error {
	switch {
	case c.Distance < 0:
		return fmt.Errorf("%w: Distance %v", errChanNegative, c.Distance)
	case c.SampleRate < 0:
		return fmt.Errorf("%w: SampleRate %v", errChanNegative, c.SampleRate)
	case c.Walls < 0:
		return fmt.Errorf("%w: Walls %d", errChanNegative, c.Walls)
	case c.SpeedMps < 0:
		return fmt.Errorf("%w: SpeedMps %v", errChanNegative, c.SpeedMps)
	}
	return nil
}

// Channel is a reproducible simulated medium between a ZigBee sender and
// a WiFi receiver. Each Transmit draws fresh shadowing, fading, noise
// and interference per the scenario.
type Channel struct {
	cfg ChannelConfig
	sc  channel.Scenario
	rng randSource
}

type randSource = *lockedRand

// NewChannel builds a channel for the given scenario. The zero values
// of SampleRate and Distance keep their legacy meaning (20 Msps, 5 m);
// start from DefaultChannelConfig to spell the baseline out.
func NewChannel(cfg ChannelConfig) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = 20e6
	}
	if cfg.Distance == 0 {
		cfg.Distance = 5
	}
	sc, err := channel.ByName(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	return &Channel{cfg: cfg, sc: sc, rng: newLockedRand(cfg.Seed)}, nil
}

// Transmit passes one ZigBee transmission through the scenario and
// returns the WiFi receiver's capture. Safe for concurrent use.
func (c *Channel) Transmit(signal []complex128) ([]complex128, error) {
	rng := c.rng.fork()
	cfg := c.sc.Config(c.cfg.SampleRate, c.cfg.Distance, c.cfg.TxPowerDBm, c.cfg.Walls, rng)
	if c.cfg.SpeedMps > 0 {
		mob := channel.MobilityPreset(c.cfg.SpeedMps)
		cfg.Mobility = &mob
		cfg.BlockFading = false
	}
	if c.cfg.SameTechnology {
		cfg.FreqOffset = 0
	}
	med, err := channel.NewMedium(cfg, rng)
	if err != nil {
		return nil, err
	}
	return med.Transmit(signal), nil
}
