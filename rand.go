package symbee

import (
	"math/rand"
	"sync"

	"symbee/internal/splitmix"
)

// lockedRand hands out deterministic child RNGs under a mutex so that
// Channel.Transmit is safe for concurrent use while staying
// reproducible for a fixed seed and call order.
type lockedRand struct {
	mu  sync.Mutex
	src *rand.Rand //symbee:guardedby mu
}

// newLockedRand roots the hierarchy at the scenario seed's splitmix
// stream 0, so adjacent public seeds decorrelate the same way every
// internal component's streams do.
func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{src: splitmix.New(seed, 0)}
}

// fork derives an independent child RNG. Children are seeded from the
// parent's own output sequence — hierarchical derivation under the
// lock, not seed arithmetic, so the rngstream concern about correlated
// adjacent seeds does not apply here.
func (l *lockedRand) fork() *rand.Rand {
	l.mu.Lock()
	defer l.mu.Unlock()
	return rand.New(rand.NewSource(l.src.Int63())) //symbee:ignore rngstream -- child seeds come from the parent stream's output, not from seed arithmetic; the parent is already splitmix-derived
}
