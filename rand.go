package symbee

import (
	"math/rand"
	"sync"
)

// lockedRand hands out deterministic child RNGs under a mutex so that
// Channel.Transmit is safe for concurrent use while staying
// reproducible for a fixed seed and call order.
type lockedRand struct {
	mu  sync.Mutex
	src *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{src: rand.New(rand.NewSource(seed))}
}

// fork derives an independent child RNG.
func (l *lockedRand) fork() *rand.Rand {
	l.mu.Lock()
	defer l.mu.Unlock()
	return rand.New(rand.NewSource(l.src.Int63()))
}
